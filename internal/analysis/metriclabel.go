package analysis

import (
	"go/ast"
	"go/types"
)

// MetricLabel enforces the PR 6 cardinality rule: every Prometheus
// label value must come from a compile-time-bounded set. The obs
// registry keys series by their rendered label string, so one call
// site that feeds a tenant name or request field into a label value
// turns a fixed-size /metrics page into an unbounded allocation (and a
// scrape-side cardinality explosion).
//
// Sinks are calls to internal/obs functions/methods whose trailing
// variadic []string parameter carries "key, value, key, value" pairs
// (Counter, Gauge, CounterFunc, Labels, ...), plus — one level deep —
// any function in the analyzed package that forwards its own variadic
// []string parameter into such a sink (the mirrorServer intGauge /
// intCounter closure idiom). At every sink call the value positions
// must be: untyped/typed constants, package-level variables, niladic
// calls (runtime.Version()), or range variables over package-level
// vars / all-constant composite literals. Anything else — params,
// locals, request-derived strings — is flagged; genuinely bounded
// dynamic values (a shard index, the -peers list) carry a
// //khist:allow metriclabel waiver stating the bound.
//
// internal/obs itself is exempt: it is the plumbing being protected.
var MetricLabel = &Analyzer{
	Name: "metriclabel",
	Doc:  "require metric label values to be compile-time constants or from known-bounded sets",
	Run:  runMetricLabel,
}

// mlSink describes one label-pair-accepting function: the number of
// fixed (non-variadic) parameters before the kv pairs begin.
type mlSink struct{ fixed int }

// mlEncl is the function lexically enclosing a call site.
type mlEncl struct {
	obj      types.Object // *types.Func (decl) or *types.Var (bound func literal)
	variadic *types.Var   // its own trailing ...string param, if any
}

func runMetricLabel(pass *Pass) error {
	if pathHasSuffix(pass.Pkg.Path(), "internal/obs") {
		return nil
	}
	sinks := make(map[types.Object]mlSink)
	// Fixpoint: each iteration may discover new derived sinks (functions
	// forwarding their kv... into a known sink). Package-local chains
	// are short; the loop is bounded by the number of functions.
	for {
		if !mlScan(pass, sinks, false) {
			break
		}
	}
	mlScan(pass, sinks, true)
	return nil
}

// mlScan walks every function body. With report=false it only grows
// the derived-sink set, returning whether it changed; with report=true
// it emits diagnostics.
func mlScan(pass *Pass, sinks map[types.Object]mlSink, report bool) bool {
	changed := false
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		bindings := funcLitBindings(pass, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			encl := &mlEncl{obj: pass.Info.Defs[fd.Name]}
			if sig, ok := pass.Info.Defs[fd.Name].Type().(*types.Signature); ok {
				encl.variadic = variadicStringParam(sig)
			}
			if mlWalk(pass, fd.Body, encl, bindings, sinks, report) {
				changed = true
			}
		}
	}
	return changed
}

// mlWalk inspects one function body, recursing into bound func
// literals with their own enclosing identity.
func mlWalk(pass *Pass, body ast.Node, encl *mlEncl, bindings map[*ast.FuncLit]types.Object, sinks map[types.Object]mlSink, report bool) bool {
	changed := false
	rangeOK := boundedRangeVars(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			sub := &mlEncl{obj: bindings[n]}
			if sig, ok := pass.Info.Types[n].Type.(*types.Signature); ok {
				sub.variadic = variadicStringParam(sig)
			}
			if mlWalk(pass, n.Body, sub, bindings, sinks, report) {
				changed = true
			}
			return false
		case *ast.CallExpr:
			sink, ok := sinkOf(pass, n, sinks)
			if !ok {
				return true
			}
			if n.Ellipsis.IsValid() {
				fwd := ast.Unparen(n.Args[len(n.Args)-1])
				if id, ok := fwd.(*ast.Ident); ok && encl.variadic != nil && pass.Info.Uses[id] == encl.variadic {
					// This function forwards its own kv... — its callers
					// spell the pairs, so the check moves to them.
					if encl.obj != nil {
						if _, seen := sinks[encl.obj]; !seen {
							sinks[encl.obj] = mlSink{fixed: fixedParams(encl.obj)}
							changed = true
						}
					}
					return true
				}
				if report {
					pass.Reportf(fwd.Pos(),
						"label pairs forwarded from %s cannot be bounds-checked; spell the pairs at the call site or forward this function's own kv parameter",
						exprString(fwd))
				}
				return true
			}
			if !report {
				return true
			}
			for i := sink.fixed; i < len(n.Args); i++ {
				if (i-sink.fixed)%2 != 1 {
					continue // key position; values are what explode cardinality
				}
				v := ast.Unparen(n.Args[i])
				if !labelValueBounded(pass, v, rangeOK) {
					pass.Reportf(v.Pos(),
						"metric label value %s is not from a compile-time-bounded set; use a constant, a bounded class, or waive with the bound stated",
						exprString(v))
				}
			}
		}
		return true
	})
	return changed
}

// sinkOf resolves a call to a label sink: an internal/obs variadic
// []string function/method, or a previously discovered derived sink.
func sinkOf(pass *Pass, call *ast.CallExpr, sinks map[types.Object]mlSink) (mlSink, bool) {
	if fn := calleeFunc(pass.Info, call); fn != nil {
		if s, ok := sinks[fn]; ok {
			return s, true
		}
		sig := fn.Type().(*types.Signature)
		if fn.Pkg() != nil && pathHasSuffix(fn.Pkg().Path(), "internal/obs") && variadicStringParam(sig) != nil {
			return mlSink{fixed: sig.Params().Len() - 1}, true
		}
		return mlSink{}, false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := pass.Info.Uses[id]; obj != nil {
			if s, ok := sinks[obj]; ok {
				return s, true
			}
		}
	}
	return mlSink{}, false
}

// funcLitBindings maps func literals bound to an identifier at their
// creation site (`x := func...`, `var x = func...`) to that
// identifier's object, so a bound closure can become a derived sink
// addressable from its call sites.
func funcLitBindings(pass *Pass, f *ast.File) map[*ast.FuncLit]types.Object {
	out := make(map[*ast.FuncLit]types.Object)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				fl, ok := ast.Unparen(rhs).(*ast.FuncLit)
				if !ok {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := pass.Info.Defs[id]; obj != nil {
						out[fl] = obj
					} else if obj := pass.Info.Uses[id]; obj != nil {
						out[fl] = obj
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if fl, ok := ast.Unparen(v).(*ast.FuncLit); ok && i < len(n.Names) {
					if obj := pass.Info.Defs[n.Names[i]]; obj != nil {
						out[fl] = obj
					}
				}
			}
		}
		return true
	})
	return out
}

// variadicStringParam returns sig's trailing ...string parameter, or
// nil if sig is not variadic over strings.
func variadicStringParam(sig *types.Signature) *types.Var {
	if !sig.Variadic() || sig.Params().Len() == 0 {
		return nil
	}
	last := sig.Params().At(sig.Params().Len() - 1)
	sl, ok := last.Type().(*types.Slice)
	if !ok {
		return nil
	}
	if b, ok := sl.Elem().(*types.Basic); ok && b.Kind() == types.String {
		return last
	}
	return nil
}

func fixedParams(obj types.Object) int {
	if sig, ok := obj.Type().(*types.Signature); ok {
		return sig.Params().Len() - 1
	}
	return 0
}

// boundedRangeVars collects identifiers provably from bounded sets:
// range *values* over a bounded operand (package-level var — fixed at
// init — or all-constant composite literal), range *keys* (ordinal
// indices, bounded by the ranged collection's size, which in this tree
// is always config-sized), and locals bound once from
// strconv.Itoa/FormatInt/FormatUint of such an index (the shard-label
// idiom `lbl := strconv.Itoa(i)`).
func boundedRangeVars(pass *Pass, body ast.Node) map[types.Object]bool {
	ok := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		rs, isRange := n.(*ast.RangeStmt)
		if !isRange {
			return true
		}
		if id, isIdent := rs.Key.(*ast.Ident); isIdent {
			if obj := pass.Info.Defs[id]; obj != nil {
				ok[obj] = true
			}
		}
		id, isIdent := rs.Value.(*ast.Ident)
		if !isIdent {
			return true
		}
		x := ast.Unparen(rs.X)
		bounded := false
		switch x := x.(type) {
		case *ast.CompositeLit:
			bounded = true
			for _, el := range x.Elts {
				if pass.Info.Types[el].Value == nil {
					bounded = false
					break
				}
			}
		default:
			bounded = isPackageLevelVar(pass, x)
		}
		if bounded {
			if obj := pass.Info.Defs[id]; obj != nil {
				ok[obj] = true
			}
		}
		return true
	})
	// Second pass: `lbl := strconv.Itoa(i)` where i is a bounded index.
	ast.Inspect(body, func(n ast.Node) bool {
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign || as.Tok.String() != ":=" || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, isIdent := as.Lhs[0].(*ast.Ident)
		if !isIdent {
			return true
		}
		call, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !isCall || len(call.Args) < 1 {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strconv" {
			return true
		}
		switch fn.Name() {
		case "Itoa", "FormatInt", "FormatUint":
		default:
			return true
		}
		if arg, isIdent := ast.Unparen(call.Args[0]).(*ast.Ident); isIdent && ok[pass.Info.Uses[arg]] {
			if obj := pass.Info.Defs[lhs]; obj != nil {
				ok[obj] = true
			}
		}
		return true
	})
	return ok
}

// labelValueBounded reports whether a label value expression provably
// comes from a bounded set.
func labelValueBounded(pass *Pass, e ast.Expr, rangeOK map[types.Object]bool) bool {
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
		return true // constant
	}
	if isPackageLevelVar(pass, e) {
		return true // fixed at init (Version, build info)
	}
	if id, ok := e.(*ast.Ident); ok && rangeOK[pass.Info.Uses[id]] {
		return true // range over a bounded operand
	}
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 0 {
		return true // niladic call: runtime.Version() etc.
	}
	if ix, ok := e.(*ast.IndexExpr); ok {
		return isPackageLevelVar(pass, ix.X) // table[class] over a fixed table
	}
	return false
}

// isPackageLevelVar reports whether e resolves to a package-scope
// variable (of this or any imported package).
func isPackageLevelVar(pass *Pass, e ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
