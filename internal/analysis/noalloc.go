package analysis

import (
	"go/ast"
	"go/types"
)

// NoAlloc is the compile-time face of the runtime alloc-pin tests: a
// function annotated
//
//	//khist:noalloc
//
// in its doc comment has promised a zero-allocation steady state (the
// rcache hit path, counter increments, the trace span recorder), and
// this rule rejects the syntactic constructs that heap-allocate:
//
//   - any fmt.* call (Sprintf and friends always allocate);
//   - string concatenation with a non-constant operand;
//   - map and slice composite literals, and &T{} of any kind;
//   - make, new, and append (append may grow);
//   - func literals (closure environments escape);
//   - string<->[]byte/[]rune conversions, EXCEPT as a map index —
//     m[string(b)] is the compiler's documented no-copy lookup;
//   - go statements.
//
// Plain struct value literals (Span{...} assigned into an array slot)
// stay on the stack and are allowed. This is a syntactic
// approximation, deliberately stricter than escape analysis: the
// annotated functions are the hottest in the tree, and a construct the
// compiler happens to keep on the stack today is one refactor away
// from escaping silently.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "reject syntactically allocating constructs in //khist:noalloc functions",
	Run:  runNoAlloc,
}

const noallocMarker = "//khist:noalloc"

func runNoAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcDocHasMarker(fd, noallocMarker) {
				continue
			}
			checkNoAlloc(pass, fd)
		}
	}
	return nil
}

func checkNoAlloc(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	// mapIndexConv marks conversion expressions appearing directly as a
	// map index, which the compiler performs without allocating.
	mapIndexConv := make(map[ast.Expr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ix, ok := n.(*ast.IndexExpr); ok {
			if t := pass.Info.Types[ix.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					mapIndexConv[ast.Unparen(ix.Index)] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s is //khist:noalloc but starts a goroutine", name)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "%s is //khist:noalloc but builds a func literal (closure environments allocate)", name)
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "%s is //khist:noalloc but takes the address of a composite literal", name)
				}
			}
		case *ast.CompositeLit:
			if t := pass.Info.Types[n].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Map, *types.Slice:
					pass.Reportf(n.Pos(), "%s is //khist:noalloc but builds a %s literal", name, typeKind(t))
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if tv, ok := pass.Info.Types[n]; ok && tv.Value == nil && isStringType(tv.Type) {
					pass.Reportf(n.Pos(), "%s is //khist:noalloc but concatenates non-constant strings", name)
				}
			}
		case *ast.CallExpr:
			checkNoAllocCall(pass, name, n, mapIndexConv)
		}
		return true
	})
}

func checkNoAllocCall(pass *Pass, name string, call *ast.CallExpr, mapIndexConv map[ast.Expr]bool) {
	// Builtins that allocate.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s is //khist:noalloc but calls %s", name, b.Name())
			case "append":
				pass.Reportf(call.Pos(), "%s is //khist:noalloc but calls append (growth allocates)", name)
			}
			return
		}
	}
	// fmt.* — every formatting entry point allocates.
	if fn := calleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "%s is //khist:noalloc but calls fmt.%s", name, fn.Name())
		return
	}
	// string <-> []byte/[]rune conversions copy, unless used directly as
	// a map index.
	if tv, ok := pass.Info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() && len(call.Args) == 1 {
		if mapIndexConv[ast.Unparen(call)] {
			return
		}
		to, from := tv.Type, pass.Info.Types[call.Args[0]].Type
		if from != nil && isStringByteConv(to, from) {
			if tv, ok := pass.Info.Types[call.Args[0]]; ok && tv.Value != nil {
				return // converting a constant is free
			}
			pass.Reportf(call.Pos(), "%s is //khist:noalloc but converts between string and byte/rune slice (copies)", name)
		}
	}
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func isStringByteConv(to, from types.Type) bool {
	return (isStringType(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isStringType(from))
}

func typeKind(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	}
	return "composite"
}
