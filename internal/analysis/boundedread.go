package analysis

import (
	"go/ast"
	"go/types"
)

// BoundedRead enforces the PR 5 codec-hardening rule everywhere: bytes
// that arrive from the network must pass through an explicit length
// bound before they are buffered whole. An unbounded io.ReadAll or
// json.NewDecoder over an HTTP body hands a remote peer the power to
// balloon the process heap with one response.
//
// Flagged: io.ReadAll(x) and json.NewDecoder(x) where x is a network
// body — a .Body selector on *http.Request / *http.Response, or a
// net.Conn — reaching the sink directly. Wrapping the body first
// (io.LimitReader(body, n), http.MaxBytesReader(w, body, n)) changes
// the argument expression and so passes; reassigning the bounded reader
// to a local and using that also passes (one-level local flow).
// In-memory readers (bytes.Reader/Buffer, strings.Reader) are never
// network bodies and are always fine.
var BoundedRead = &Analyzer{
	Name: "boundedread",
	Doc:  "require io.ReadAll/json.NewDecoder over network bodies to sit behind an explicit length bound",
	Run:  runBoundedRead,
}

func runBoundedRead(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			runBoundedReadFunc(pass, fd.Body)
		}
	}
	return nil
}

func runBoundedReadFunc(pass *Pass, body *ast.BlockStmt) {
	// bounded: locals assigned from a bounding wrapper call, plus
	// network-body fields reassigned through one (the readBody idiom
	// `r.Body = http.MaxBytesReader(w, r.Body, n)`).
	bounded := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBoundingWrapper(pass, call) {
						bounded[exprString(n.Lhs[i])] = true
					}
				}
			}
		case *ast.CallExpr:
			var sink, kind string
			if calleeIs(pass.Info, n, "io", "ReadAll") && len(n.Args) == 1 {
				sink, kind = "io.ReadAll", "buffers"
			} else if calleeIs(pass.Info, n, "encoding/json", "NewDecoder") && len(n.Args) == 1 {
				sink, kind = "json.NewDecoder", "decodes"
			} else {
				return true
			}
			arg := ast.Unparen(n.Args[0])
			if !isNetworkBody(pass, arg) || bounded[exprString(arg)] {
				return true
			}
			pass.Reportf(n.Pos(),
				"%s %s the network body %s with no length bound; wrap it in http.MaxBytesReader or io.LimitReader first",
				sink, kind, exprString(arg))
		}
		return true
	})
}

// isBoundingWrapper reports whether call constructs a length-bounded
// reader.
func isBoundingWrapper(pass *Pass, call *ast.CallExpr) bool {
	return calleeIs(pass.Info, call, "io", "LimitReader") ||
		calleeIs(pass.Info, call, "net/http", "MaxBytesReader")
}

// isNetworkBody reports whether e denotes bytes arriving from the
// network: an http Request/Response .Body, or a net.Conn value.
func isNetworkBody(pass *Pass, e ast.Expr) bool {
	if sel, ok := e.(*ast.SelectorExpr); ok && sel.Sel.Name == "Body" {
		t := pass.Info.Types[sel.X].Type
		if t == nil {
			return false
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" &&
				(obj.Name() == "Request" || obj.Name() == "Response") {
				return true
			}
		}
		return false
	}
	if t := pass.Info.Types[e].Type; t != nil {
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			return obj.Pkg() != nil && obj.Pkg().Path() == "net" && obj.Name() == "Conn"
		}
	}
	return false
}
