package analysis

import (
	"go/ast"
	"go/token"
)

// LockIO enforces the shard/flight lock discipline: a sync.Mutex (or
// RWMutex) in this tree guards in-memory state transitions measured in
// nanoseconds — never a wait. Blocking while holding one turns every
// sibling request into a convoy (and, for Pool.Do under a lock that a
// pool worker also takes, a deadlock). The flightGroup pattern is the
// sanctioned alternative: unlock, wait, relock.
//
// The analysis is lexical, per function body: X.Lock()/X.RLock() adds
// X to the held set, X.Unlock()/X.RUnlock() removes it, `defer
// X.Unlock()` holds X to function end. Branches merge conservatively
// (a branch that ends in return does not clear held state for the
// fallthrough path). While any lock is held, these block and are
// flagged: par Pool.Do/DoTimed/For/ForWorker/Go and package-level
// par.For/ForWorker/MapReduce; net/http client calls and net dialing;
// time.Sleep; sync.WaitGroup.Wait and Cond.Wait on *other* objects;
// channel sends and receives; select statements.
//
// Cross-function effects (a called helper that blocks) are out of
// scope — the rule catches the direct shapes that have bitten and
// keeps the approximation reviewable.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc:  "forbid blocking calls, channel ops, and Pool.Do while holding a sync mutex",
	Run:  runLockIO,
}

func runLockIO(pass *Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			st := &lockState{pass: pass, held: make(map[string]bool)}
			st.block(fd.Body)
		}
	}
	return nil
}

// lockState is the lexical held-lock tracking for one function.
type lockState struct {
	pass *Pass
	held map[string]bool
}

func (s *lockState) clone() *lockState {
	c := &lockState{pass: s.pass, held: make(map[string]bool, len(s.held))}
	for k := range s.held {
		c.held[k] = true
	}
	return c
}

// anyHeld returns one held lock's name, or "".
func (s *lockState) anyHeld() string {
	for k := range s.held {
		return k
	}
	return ""
}

// block processes stmts in order, mutating s. Reports whether the
// block terminates (ends in return/panic — its lock effects do not
// reach the caller's continuation).
func (s *lockState) block(b *ast.BlockStmt) bool {
	for _, st := range b.List {
		if s.stmt(st) {
			return true
		}
	}
	return false
}

// stmt processes one statement; reports whether control cannot fall
// through it.
func (s *lockState) stmt(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			s.expr(r)
		}
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto end this path lexically
	case *ast.ExprStmt:
		s.expr(st.X)
	case *ast.DeferStmt:
		if name, op, ok := lockOp(s.pass, st.Call); ok && (op == "Unlock" || op == "RUnlock") {
			// Held to function end; blocking checks continue to apply.
			_ = name
			return false
		}
		s.checkCall(st.Call)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			s.expr(r)
		}
		for _, l := range st.Lhs {
			s.expr(l)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.expr(v)
					}
				}
			}
		}
	case *ast.SendStmt:
		s.flagIfHeld(st.Pos(), "sends on a channel")
		s.expr(st.Value)
	case *ast.GoStmt:
		// The goroutine body runs unlocked; don't descend with held state.
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.expr(st.Cond)
		body := s.clone()
		bodyTerm := body.block(st.Body)
		var elseTerm bool
		els := s.clone()
		if st.Else != nil {
			elseTerm = els.stmt(st.Else)
		}
		switch {
		case bodyTerm && elseTerm:
			return true
		case bodyTerm:
			s.held = els.held
		case elseTerm:
			s.held = body.held
		default:
			s.held = intersect(body.held, els.held)
		}
	case *ast.BlockStmt:
		return s.block(st)
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Cond != nil {
			s.expr(st.Cond)
		}
		body := s.clone()
		body.block(st.Body)
		// Continuation keeps the entry state: loop bodies that unlock
		// must re-lock before exiting, which the body pass checks.
	case *ast.RangeStmt:
		s.expr(st.X)
		body := s.clone()
		body.block(st.Body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Tag != nil {
			s.expr(st.Tag)
		}
		for _, c := range st.Body.List {
			cl := s.clone()
			for _, cs := range c.(*ast.CaseClause).Body {
				if cl.stmt(cs) {
					break
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			cl := s.clone()
			for _, cs := range c.(*ast.CaseClause).Body {
				if cl.stmt(cs) {
					break
				}
			}
		}
	case *ast.SelectStmt:
		s.flagIfHeld(st.Pos(), "waits in a select")
		for _, c := range st.Body.List {
			cl := s.clone()
			for _, cs := range c.(*ast.CommClause).Body {
				if cl.stmt(cs) {
					break
				}
			}
		}
	case *ast.LabeledStmt:
		return s.stmt(st.Stmt)
	}
	return false
}

// expr scans an expression for lock transitions, blocking calls, and
// channel receives.
func (s *lockState) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs later, on its own goroutine/stack state
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				s.flagIfHeld(n.Pos(), "receives from a channel")
			}
		case *ast.CallExpr:
			if name, op, ok := lockOp(s.pass, n); ok {
				switch op {
				case "Lock", "RLock":
					s.held[name] = true
				case "Unlock", "RUnlock":
					delete(s.held, name)
				}
				return false
			}
			s.checkCall(n)
		}
		return true
	})
}

// checkCall flags n if it is a known-blocking call made while a lock
// is held.
func (s *lockState) checkCall(n *ast.CallExpr) {
	if len(s.held) == 0 {
		return
	}
	fn := calleeFunc(s.pass.Info, n)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	var what string
	switch {
	case pathHasSuffix(pkg, "internal/par"):
		switch name {
		case "Do", "DoTimed", "For", "ForWorker", "Go", "MapReduce":
			what = "dispatches par." + name + " work"
		}
	case pkg == "net/http":
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head":
			what = "performs an HTTP round trip"
		}
	case pkg == "net":
		switch name {
		case "Dial", "DialTimeout", "Listen", "ListenPacket":
			what = "dials/listens on the network"
		}
	case pkg == "time" && name == "Sleep":
		what = "sleeps"
	case pkg == "sync" && name == "Wait":
		what = "waits on a sync primitive"
	}
	if what != "" {
		s.flagIfHeld(n.Pos(), what)
	}
}

// flagIfHeld reports a blocking construct at pos when any lock is
// held, naming one held lock for the message.
func (s *lockState) flagIfHeld(pos token.Pos, what string) {
	if lock := s.anyHeld(); lock != "" {
		s.pass.Reportf(pos, "%s while holding %s; release the lock first (flightGroup pattern: unlock, wait, relock)", what, lock)
	}
}

func intersect(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool)
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// lockOp recognizes X.Lock/Unlock/RLock/RUnlock where X's type is (or
// embeds) a sync mutex, returning X's lexical identity and the op.
func lockOp(pass *Pass, call *ast.CallExpr) (name, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	return exprString(sel.X), sel.Sel.Name, true
}
