package analysis

import (
	"go/ast"
	"go/types"
)

// RawRand enforces the determinism invariant at its root: the only
// randomness in the tree flows from explicitly seeded, splittable
// sources. The package-level math/rand generator is process-global and
// (absent a Seed call) time-seeded, so any use of it makes results
// depend on scheduling and wall clock — which breaks the bit-identity
// guarantee (same data + params => same histogram at any worker count).
//
// Flagged:
//   - calls to math/rand package-level generator functions (Intn,
//     Float64, Perm, Shuffle, Seed, Read, ...);
//   - rand.New(src) where src is not a direct rand.NewSource(...) /
//     par.NewSource(...) call — an opaque source can't be shown seeded.
//
// Exempt: package internal/par (the sanctioned RNG plumbing) and
// _test.go files (tests may use throwaway randomness).
var RawRand = &Analyzer{
	Name: "rawrand",
	Doc:  "forbid math/rand global generators and unseeded rand.New outside internal/par",
	Run:  runRawRand,
}

// mathRandGlobals are the package-level functions that read or mutate
// the shared global generator.
var mathRandGlobals = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 additions share the same global-state problem.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint32N": true, "Uint64N": true, "UintN": true, "Uint": true,
}

func isMathRandPath(p string) bool { return p == "math/rand" || p == "math/rand/v2" }

func runRawRand(pass *Pass) error {
	if pathHasSuffix(pass.Pkg.Path(), "internal/par") {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || !isMathRandPath(fn.Pkg().Path()) {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // *rand.Rand methods run an explicit, seeded source
			}
			if mathRandGlobals[fn.Name()] {
				pass.Reportf(call.Pos(),
					"math/rand.%s uses the process-global generator; derive a stream with par.NewRand/par.NewSource so results stay bit-identical",
					fn.Name())
				return true
			}
			if fn.Name() == "New" && len(call.Args) == 1 {
				if !isSeededSource(pass, call.Args[0]) {
					pass.Reportf(call.Pos(),
						"rand.New with an opaque source cannot be proven seeded; construct it as rand.New(rand.NewSource(seed)) or use par.NewRand")
				}
			}
			return true
		})
	}
	return nil
}

// isSeededSource reports whether e is a direct call to a sanctioned
// seeded-source constructor.
func isSeededSource(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if isMathRandPath(fn.Pkg().Path()) && (fn.Name() == "NewSource" || fn.Name() == "NewPCG" || fn.Name() == "NewChaCha8") {
		return true
	}
	if pathHasSuffix(fn.Pkg().Path(), "internal/par") && fn.Name() == "NewSource" {
		return true
	}
	return false
}
