package analysis_test

import (
	"testing"

	"khist/internal/analysis"
	"khist/internal/analysis/analysistest"
)

// Each analyzer runs over its fixture package; every flagged line
// carries a want comment, so these tests prove both that the rule fires
// on the violating shapes and that it stays silent on the sanctioned
// ones.

func TestRawRand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.RawRand, "rawrand")
}

// TestRawRandExemptsPar proves the internal/par carve-out: the stub
// package uses the global generator and produces no diagnostics.
func TestRawRandExemptsPar(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.RawRand, "khist/internal/par")
}

func TestWallTime(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.WallTime, "walltime")
}

func TestBoundedRead(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.BoundedRead, "boundedread")
}

func TestMetricLabel(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.MetricLabel, "metriclabel")
}

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.NoAlloc, "noalloc")
}

func TestLockIO(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), analysis.LockIO, "lockio")
}
