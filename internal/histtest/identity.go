package histtest

import (
	"math"

	"khist/internal/collision"
	"khist/internal/dist"
)

// IdentityResult reports an identity-tester run.
type IdentityResult struct {
	Accept bool
	// DistEstimate is the estimated squared l2 distance ||p - q||_2^2.
	DistEstimate float64
	// Threshold is the accept cutoff applied to DistEstimate.
	Threshold   float64
	SamplesUsed int64
}

// TestIdentityL2 tests whether the sampled distribution p equals a known,
// explicitly given distribution q, versus ||p - q||_2 > eps. This is the
// Identity Testing problem of the paper's related-work discussion
// (Batu et al., FOCS 2001), implemented with the same collision machinery
// as the histogram testers:
//
//	||p - q||_2^2 = ||p||_2^2 + ||q||_2^2 - 2 <p, q>,
//
// where ||p||_2^2 is estimated by the observed collision probability of
// the samples, <p, q> by the empirical mean of q over the samples, and
// ||q||_2^2 is computed exactly. The estimate is the median over
// r = 16 ln(6 n^2) independent sample sets of size m = scale * 16 sqrt(n)
// / eps^2 each; accept iff the estimated squared distance is at most
// eps^2 / 2.
//
// Uniformity testing is the special case q = Uniform(n); the tiling
// 1-histogram property coincides with it.
func TestIdentityL2(s dist.Sampler, q *dist.Distribution, eps, scale float64, maxSamples int) (*IdentityResult, error) {
	if !(eps > 0 && eps < 1) || math.IsNaN(eps) {
		return nil, ErrBadEps
	}
	n := s.N()
	if n < 2 {
		return nil, ErrTinyDomain
	}
	if q.N() != n {
		return nil, ErrBadDomain
	}
	if scale <= 0 {
		scale = 1
	}
	m := int(math.Ceil(scale * 16 * math.Sqrt(float64(n)) / (eps * eps)))
	if m < 2 {
		m = 2
	}
	if maxSamples > 0 && m > maxSamples {
		m = maxSamples
	}
	r := numSets(n)

	qNormSq := q.L2NormSq()
	ests := make([]float64, 0, r)
	var drawn int64
	for i := 0; i < r; i++ {
		e := dist.NewEmpiricalFromSampler(s, m)
		drawn += int64(m)
		pNormSq, _, ok := collision.ObservedCollisionProb(e, dist.Whole(n))
		if !ok {
			continue
		}
		// <p, q> estimated by the empirical mean of q over p-samples.
		var inner float64
		for v := 0; v < n; v++ {
			if c := e.Occ(v); c > 0 {
				inner += float64(c) * q.P(v)
			}
		}
		inner /= float64(m)
		ests = append(ests, pNormSq+qNormSq-2*inner)
	}
	res := &IdentityResult{SamplesUsed: drawn, Threshold: eps * eps / 2}
	if len(ests) == 0 {
		// No set produced a collision estimate: at these sample sizes p
		// has tiny collision mass, indistinguishable from q unless q is
		// heavy — fall back to accepting, as the uniformity tester does.
		res.Accept = true
		return res, nil
	}
	res.DistEstimate = collision.Median(ests)
	res.Accept = res.DistEstimate <= res.Threshold
	return res, nil
}
