package histtest

import (
	"math"
	"math/rand"

	"khist/internal/collision"
	"khist/internal/dist"
	"khist/internal/par"
)

// IdentityResult reports an identity-tester run.
type IdentityResult struct {
	Accept bool
	// DistEstimate is the estimated squared l2 distance ||p - q||_2^2.
	DistEstimate float64
	// Threshold is the accept cutoff applied to DistEstimate.
	Threshold   float64
	SamplesUsed int64
}

// TestIdentityL2 tests whether the sampled distribution p equals a known,
// explicitly given distribution q, versus ||p - q||_2 > eps. This is the
// Identity Testing problem of the paper's related-work discussion
// (Batu et al., FOCS 2001), implemented with the same collision machinery
// as the histogram testers:
//
//	||p - q||_2^2 = ||p||_2^2 + ||q||_2^2 - 2 <p, q>,
//
// where ||p||_2^2 is estimated by the observed collision probability of
// the samples, <p, q> by the empirical mean of q over the samples, and
// ||q||_2^2 is computed exactly. The estimate is the median over
// r = 16 ln(6 n^2) independent sample sets of size m = scale * 16 sqrt(n)
// / eps^2 each; accept iff the estimated squared distance is at most
// eps^2 / 2.
//
// rng seeds the per-set streams: when s is forkable, each of the r sets
// is drawn from an independent stream split off one value drawn from rng,
// so repeated tester calls sharing a *rand.Rand use fresh streams each
// time. A nil rng means a fixed seed (reproducible in isolation);
// non-forkable samplers draw sequentially from their own stream.
//
// workers splits the set drawing and the per-set O(n) estimates across
// goroutines; zero or one means serial, matching the Parallelism options
// elsewhere in the module. The verdict is deterministic in (s, rng) —
// workers never affects it.
//
// Uniformity testing is the special case q = Uniform(n); the tiling
// 1-histogram property coincides with it.
func TestIdentityL2(s dist.Sampler, q *dist.Distribution, rng *rand.Rand, eps, scale float64, maxSamples, workers int) (*IdentityResult, error) {
	if !(eps > 0 && eps < 1) || math.IsNaN(eps) {
		return nil, ErrBadEps
	}
	n := s.N()
	if n < 2 {
		return nil, ErrTinyDomain
	}
	if q.N() != n {
		return nil, ErrBadDomain
	}
	if scale <= 0 {
		scale = 1
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	m := int(math.Ceil(scale * 16 * math.Sqrt(float64(n)) / (eps * eps)))
	if m < 2 {
		m = 2
	}
	if maxSamples > 0 && m > maxSamples {
		m = maxSamples
	}
	r := numSets(n)

	workers = par.Effective(workers)
	sizes := make([]int, r)
	for i := range sizes {
		sizes[i] = m
	}
	sets := collision.CollectSetsSized(s, sizes, workers, rng.Uint64())

	// Per-set distance estimates, evaluated concurrently: each set owns
	// its slot, and the O(n) inner-product pass is the dominant cost.
	qNormSq := q.L2NormSq()
	vals := make([]float64, r)
	defined := make([]bool, r)
	par.For(workers, r, func(i int) {
		e := sets[i]
		pNormSq, _, ok := collision.ObservedCollisionProb(e, dist.Whole(n))
		if !ok {
			return
		}
		// <p, q> estimated by the empirical mean of q over p-samples.
		var inner float64
		for v := 0; v < n; v++ {
			if c := e.Occ(v); c > 0 {
				inner += float64(c) * q.P(v)
			}
		}
		inner /= float64(m)
		vals[i] = pNormSq + qNormSq - 2*inner
		defined[i] = true
	})
	ests := vals[:0]
	for i, v := range vals {
		if defined[i] {
			ests = append(ests, v)
		}
	}

	res := &IdentityResult{SamplesUsed: int64(r) * int64(m), Threshold: eps * eps / 2}
	if len(ests) == 0 {
		// No set produced a collision estimate: at these sample sizes p
		// has tiny collision mass, indistinguishable from q unless q is
		// heavy — fall back to accepting, as the uniformity tester does.
		res.Accept = true
		return res, nil
	}
	res.DistEstimate = collision.Median(ests)
	res.Accept = res.DistEstimate <= res.Threshold
	return res, nil
}
