package histtest

import (
	"math"
	"math/rand"

	"khist/internal/collision"
	"khist/internal/dist"
	"khist/internal/par"
)

// flatL2 is testFlatness-l2 (Algorithm 3). An interval I is accepted as
// flat when either
//
//  1. some sample set barely hits it (|S^i_I|/m < eps^2/2), so by Fact 1
//     its weight is below eps^2 and its possible contribution to
//     ||p - p'||_2^2 is at most p(I)^2 <= eps^2 p(I); or
//  2. the median observed collision probability z_I is within the noise
//     allowance of the uniform minimum 1/|I|:
//     z_I <= 1/|I| + max_i eps^2 / (2 phat_i(I)), with phat_i = 2|S^i_I|/m.
//
// Rejection certifies ||p_I||_2^2 > 1/|I|, i.e. the conditional
// distribution is provably non-uniform, so I contains a piece boundary.
//
// With workers > 1 the per-set hit fractions and collision statistics are
// evaluated concurrently across the r sets; the light-interval decision
// and the median fold in set order, so the verdict is identical at every
// worker count.
func flatL2(sets []*dist.Empirical, iv dist.Interval, eps float64, workers int) bool {
	if iv.Len() <= 1 {
		return true // single elements are trivially flat
	}
	threshold := eps * eps / 2
	minFrac := minHitFraction(sets, iv, workers)
	if minFrac < threshold {
		return true // light interval: accept (Step 2)
	}
	z, ok := collision.MedianCollisionProbParallel(sets, iv, workers)
	if !ok {
		return true // no set had two hits; certainly light
	}
	// max_i eps^2/(2 phat_i) = eps^2 / (2 * 2 * min_i |S^i_I|/m).
	allowance := eps * eps / (4 * minFrac)
	return z <= 1/float64(iv.Len())+allowance
}

// minHitFraction returns min_i |S^i_I| / m_i over the sample sets,
// splitting the per-set lookups across workers. The minimum is
// order-independent, so any worker count gives the same value.
func minHitFraction(sets []*dist.Empirical, iv dist.Interval, workers int) float64 {
	if workers <= 1 || len(sets) < minParallelFlatSets {
		minFrac := math.Inf(1)
		for _, e := range sets {
			if frac := float64(e.Hits(iv)) / float64(e.M()); frac < minFrac {
				minFrac = frac
			}
		}
		return minFrac
	}
	return par.MapReduce(workers, len(sets),
		func(i int) float64 { return float64(sets[i].Hits(iv)) / float64(sets[i].M()) },
		math.Inf(1),
		func(acc, x float64, _ int) float64 { return math.Min(acc, x) })
}

// minParallelFlatSets mirrors collision.minParallelSets: below it the
// per-set statistics are too cheap to be worth goroutines.
const minParallelFlatSets = 128

// flatL1 is testFlatness-l1 (Algorithm 4). The light test compares each
// set's hit count against 16^3 sqrt(|I|) / eps^4 (the paper's 16/delta^2
// multiplied out with delta = eps^2/16: enough samples for a
// delta-multiplicative collision estimate on a near-uniform interval); the
// collision test allows a (1 + eps^2/4) multiplicative slack over the
// uniform minimum.
//
// The light threshold is applied as a fraction of the set size m: with the
// paper's m = 2^13 sqrt(kn) eps^-5 the cutoff 16^3 sqrt(|I|)/eps^4 equals
// m * (eps/2) sqrt(|I|/(kn)) exactly, and the fractional form stays
// meaningful when SampleScale shrinks m below the worst-case formula.
func flatL1(sets []*dist.Empirical, iv dist.Interval, eps float64, k, n, workers int) bool {
	if iv.Len() <= 1 {
		return true
	}
	lightFrac := eps / 2 * math.Sqrt(float64(iv.Len())/(float64(k)*float64(n)))
	if minHitFraction(sets, iv, workers) < lightFrac {
		return true // light interval: accept (Step 1)
	}
	z, ok := collision.MedianCollisionProbParallel(sets, iv, workers)
	if !ok {
		return true
	}
	return z <= (1+eps*eps/4)/float64(iv.Len())
}

// UniformityResult reports a uniformity-tester run.
type UniformityResult struct {
	Accept      bool
	SamplesUsed int64
	// CollisionProb is the observed collision probability the verdict was
	// based on.
	CollisionProb float64
	// Threshold is the accept cutoff applied to CollisionProb.
	Threshold float64
}

// TestUniformityL1 is the Goldreich-Ron / Batu et al. collision-based
// uniformity tester, included as the k = 1 baseline the paper builds on:
// a uniform distribution is exactly a tiling 1-histogram. It draws
// m = ceil(scale * 16 sqrt(n) / eps^4) samples and accepts iff the
// observed collision probability is at most (1 + eps^2/4) / n.
//
// rng seeds the draw stream: when s is forkable the samples come from an
// independent stream seeded from rng, so repeated tester calls sharing
// one *rand.Rand use fresh streams each time. A nil rng falls back to a
// fixed seed, making the call reproducible in isolation. Non-forkable
// samplers draw from their own stream and rng is not consulted.
//
// If p is uniform, E[coll prob] = 1/n; if p is eps-far from uniform in l1,
// then ||p||_2^2 >= (1 + eps^2)/n by Cauchy-Schwarz, so the statistic
// separates the cases with constant probability at this sample size.
func TestUniformityL1(s dist.Sampler, rng *rand.Rand, eps, scale float64, maxSamples int) (*UniformityResult, error) {
	if !(eps > 0 && eps < 1) || math.IsNaN(eps) {
		return nil, ErrBadEps
	}
	n := s.N()
	if n < 2 {
		return nil, ErrTinyDomain
	}
	if scale <= 0 {
		scale = 1
	}
	e4 := eps * eps * eps * eps
	m := int(math.Ceil(scale * 16 * math.Sqrt(float64(n)) / e4))
	if m < 2 {
		m = 2
	}
	if maxSamples > 0 && m > maxSamples {
		m = maxSamples
	}
	e := dist.NewEmpiricalFromSampler(drawSource(s, rng), m)
	z, _, ok := collision.ObservedCollisionProb(e, dist.Whole(n))
	threshold := (1 + eps*eps/4) / float64(n)
	res := &UniformityResult{
		SamplesUsed:   int64(m),
		CollisionProb: z,
		Threshold:     threshold,
	}
	if !ok {
		// Too few collisions to even measure: indistinguishable from
		// uniform at this sample size.
		res.Accept = true
		return res, nil
	}
	res.Accept = z <= threshold
	return res, nil
}

// drawSource resolves the stream a single-set tester draws from: an
// independent fork of s seeded from rng when s is forkable, otherwise s
// itself. A nil rng means the fixed default seed.
func drawSource(s dist.Sampler, rng *rand.Rand) dist.Sampler {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	if fork := dist.TryFork(s, rng.Uint64()); fork != nil {
		return fork
	}
	return s
}
