package histtest

import (
	"math"
	"math/rand"
	"testing"

	"khist/internal/dist"
)

func TestIdentityValidation(t *testing.T) {
	s := dist.NewSampler(dist.Uniform(16), rand.New(rand.NewSource(1)))
	if _, err := TestIdentityL2(s, dist.Uniform(16), nil, 0, 1, 0, 1); err == nil {
		t.Error("eps=0: want error")
	}
	if _, err := TestIdentityL2(s, dist.Uniform(16), nil, math.NaN(), 1, 0, 1); err == nil {
		t.Error("eps NaN: want error")
	}
	if _, err := TestIdentityL2(s, dist.Uniform(8), nil, 0.2, 1, 0, 1); err != ErrBadDomain {
		t.Error("domain mismatch: want ErrBadDomain")
	}
	tiny := dist.NewSampler(dist.Uniform(1), rand.New(rand.NewSource(1)))
	if _, err := TestIdentityL2(tiny, dist.Uniform(1), nil, 0.2, 1, 0, 1); err != ErrTinyDomain {
		t.Error("tiny domain: want ErrTinyDomain")
	}
}

func TestIdentityAcceptsEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial, q := range []*dist.Distribution{
		dist.Uniform(128),
		dist.Zipf(128, 1.1),
		dist.RandomKHistogram(128, 4, rng),
	} {
		s := dist.NewSampler(q, rand.New(rand.NewSource(int64(10+trial))))
		res, err := TestIdentityL2(s, q, nil, 0.2, 0.2, 20000, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accept {
			t.Errorf("trial %d: rejected p == q (est %v vs threshold %v)",
				trial, res.DistEstimate, res.Threshold)
		}
		if res.SamplesUsed <= 0 {
			t.Error("no samples recorded")
		}
	}
}

func TestIdentityRejectsFar(t *testing.T) {
	// p concentrated on few elements vs q uniform: l2 distance is large.
	n := 128
	q := dist.Uniform(n)
	p := dist.UniformOn(n, dist.Interval{Lo: 0, Hi: 8})
	if d := dist.L2(p, q); d < 0.3 {
		t.Fatalf("workload not far: l2 = %v", d)
	}
	s := dist.NewSampler(p, rand.New(rand.NewSource(3)))
	res, err := TestIdentityL2(s, q, nil, 0.3, 0.2, 20000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accept {
		t.Errorf("accepted a far pair (est %v vs threshold %v)",
			res.DistEstimate, res.Threshold)
	}
}

func TestIdentityEstimateTracksTruth(t *testing.T) {
	n := 64
	q := dist.Uniform(n)
	p := dist.TwoLevelNoise(q, 0.8)
	truth := dist.L2Sq(p, q)
	s := dist.NewSampler(p, rand.New(rand.NewSource(4)))
	res, err := TestIdentityL2(s, q, nil, 0.2, 1, 50000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.DistEstimate-truth) > 0.5*truth+1e-4 {
		t.Errorf("distance estimate %v, truth %v", res.DistEstimate, truth)
	}
}

// Identity testing with q = uniform must agree with the uniformity tester
// in both directions.
func TestIdentityGeneralizesUniformity(t *testing.T) {
	n := 256
	u := dist.Uniform(n)
	far := dist.HalfSupport(u, dist.Whole(n), rand.New(rand.NewSource(5)))

	sU := dist.NewSampler(u, rand.New(rand.NewSource(6)))
	idU, err := TestIdentityL2(sU, u, nil, 0.25, 0.2, 50000, 4)
	if err != nil {
		t.Fatal(err)
	}
	sF := dist.NewSampler(far, rand.New(rand.NewSource(7)))
	idF, err := TestIdentityL2(sF, u, nil, 0.05, 0.2, 50000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !idU.Accept {
		t.Error("identity vs uniform rejected the uniform source")
	}
	if idF.Accept {
		t.Error("identity vs uniform accepted the half-support source")
	}
}
