package histtest

import (
	"math"
	"math/rand"
	"testing"

	"khist/internal/dist"
	"khist/internal/vopt"
)

// combL2 returns a distribution with a calibrated, large l2 distance from
// every k-histogram: all mass on [0, 2t) with alternating heavy/zero
// elements. Any piecewise-constant function must miss each element of the
// comb by about half the tooth height.
func combL2(n, t int) *dist.Distribution {
	w := make([]float64, n)
	for i := 0; i < 2*t; i += 2 {
		w[i] = 1
	}
	d, err := dist.FromWeights(w)
	if err != nil {
		panic(err)
	}
	return d
}

func testerOpts(k int, eps float64, seed int64) Options {
	return Options{
		K: k, Eps: eps,
		Rand:             rand.New(rand.NewSource(seed)),
		SampleScale:      0.02,
		MaxSamplesPerSet: 4000,
	}
}

func TestOptionsValidation(t *testing.T) {
	s := dist.NewSampler(dist.Uniform(16), rand.New(rand.NewSource(1)))
	bad := []Options{
		{K: 0, Eps: 0.1},
		{K: 2, Eps: 0},
		{K: 2, Eps: 1},
		{K: 2, Eps: math.NaN()},
		{K: 2, Eps: 0.1, SampleScale: -1},
	}
	for i, o := range bad {
		if _, err := TestTilingL2(s, o); err == nil {
			t.Errorf("case %d: TestTilingL2 accepted invalid options", i)
		}
		if _, err := TestTilingL1(s, o); err == nil {
			t.Errorf("case %d: TestTilingL1 accepted invalid options", i)
		}
	}
	tiny := dist.NewSampler(dist.Uniform(1), rand.New(rand.NewSource(1)))
	if _, err := TestTilingL2(tiny, Options{K: 1, Eps: 0.1}); err != ErrTinyDomain {
		t.Errorf("tiny domain: err = %v", err)
	}
}

func TestL2TesterAcceptsHistograms(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		n := 64
		k := 1 + rng.Intn(4)
		d := dist.RandomKHistogram(n, k, rng)
		s := dist.NewSampler(d, rand.New(rand.NewSource(int64(100+trial))))
		res, err := TestTilingL2(s, testerOpts(k, 0.3, int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accept {
			t.Errorf("trial %d: rejected a true %d-histogram (partition %v)",
				trial, k, res.Partition)
		}
		if len(res.Partition) > k {
			t.Errorf("trial %d: accepted with %d > k intervals", trial, len(res.Partition))
		}
	}
}

func TestL2TesterAcceptsUniform(t *testing.T) {
	s := dist.NewSampler(dist.Uniform(128), rand.New(rand.NewSource(3)))
	res, err := TestTilingL2(s, testerOpts(1, 0.25, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accept {
		t.Error("rejected the uniform distribution as a 1-histogram")
	}
	// The partition must be the whole domain in one interval.
	if len(res.Partition) != 1 || res.Partition[0] != dist.Whole(128) {
		t.Errorf("partition = %v", res.Partition)
	}
}

func TestL2TesterRejectsFarInstances(t *testing.T) {
	n, k := 64, 2
	eps := 0.2
	d := combL2(n, 8)
	// Certify the instance is far in l2: distance > eps.
	optSq, err := vopt.OptimalL2Error(d, k)
	if err != nil {
		t.Fatal(err)
	}
	if math.Sqrt(optSq) <= eps {
		t.Fatalf("test workload not actually far: l2 distance %v <= %v", math.Sqrt(optSq), eps)
	}
	rejected := 0
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		s := dist.NewSampler(d, rand.New(rand.NewSource(int64(200+trial))))
		res, err := TestTilingL2(s, testerOpts(k, eps, int64(300+trial)))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accept {
			rejected++
		}
	}
	if rejected < trials-1 {
		t.Errorf("rejected only %d/%d far instances", rejected, trials)
	}
}

func TestL1TesterAcceptsHistograms(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		n := 64
		k := 1 + rng.Intn(4)
		d := dist.RandomKHistogram(n, k, rng)
		s := dist.NewSampler(d, rand.New(rand.NewSource(int64(400+trial))))
		res, err := TestTilingL1(s, testerOpts(k, 0.3, int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accept {
			t.Errorf("trial %d: rejected a true %d-histogram (partition %v)",
				trial, k, res.Partition)
		}
	}
}

func TestL1TesterRejectsFarInstances(t *testing.T) {
	n, k := 64, 2
	eps := 0.3
	// Alternating two-level noise on uniform: l1 distance from any
	// k-histogram stays near delta for k << n.
	d := dist.TwoLevelNoise(dist.Uniform(n), 0.9)
	opt, err := vopt.OptimalL1Error(d, k)
	if err != nil {
		t.Fatal(err)
	}
	if opt <= eps {
		t.Fatalf("test workload not actually far: l1 distance %v <= %v", opt, eps)
	}
	rejected := 0
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		s := dist.NewSampler(d, rand.New(rand.NewSource(int64(500+trial))))
		res, err := TestTilingL1(s, testerOpts(k, eps, int64(600+trial)))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accept {
			rejected++
		}
	}
	if rejected < trials-1 {
		t.Errorf("rejected only %d/%d far instances", rejected, trials)
	}
}

// At k = n the property is trivial: every distribution is a tiling
// n-histogram, so the tester must accept anything.
func TestTesterTrivialAtKEqualsN(t *testing.T) {
	n := 32
	d := dist.Staircase(n)
	s := dist.NewSampler(d, rand.New(rand.NewSource(7)))
	res, err := TestTilingL2(s, testerOpts(n, 0.3, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accept {
		t.Error("k = n tester rejected (property is trivial)")
	}
}

// More pieces never hurt: if the tester accepts at k, it must overwhelmingly
// accept at k+1 on the same distribution (monotonicity smoke test).
func TestTesterMonotoneInK(t *testing.T) {
	d := dist.RandomKHistogram(64, 3, rand.New(rand.NewSource(9)))
	for _, k := range []int{3, 4, 6} {
		s := dist.NewSampler(d, rand.New(rand.NewSource(10)))
		res, err := TestTilingL2(s, testerOpts(k, 0.3, 11))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accept {
			t.Errorf("k=%d: rejected a 3-histogram", k)
		}
	}
}

func TestPartitionInvariants(t *testing.T) {
	d := dist.RandomKHistogram(64, 3, rand.New(rand.NewSource(12)))
	s := dist.NewSampler(d, rand.New(rand.NewSource(13)))
	res, err := TestTilingL2(s, testerOpts(3, 0.3, 14))
	if err != nil {
		t.Fatal(err)
	}
	// Partition intervals must be contiguous starting at 0.
	cursor := 0
	for _, iv := range res.Partition {
		if iv.Lo != cursor {
			t.Fatalf("partition gap: %v after cursor %d", iv, cursor)
		}
		if iv.Empty() {
			t.Fatalf("empty partition interval %v", iv)
		}
		cursor = iv.Hi
	}
	if res.Accept && cursor != 64 {
		t.Error("accepted without covering the domain")
	}
	if res.FlatnessCalls <= 0 {
		t.Error("no flatness calls recorded")
	}
	if res.SamplesUsed != int64(res.R)*int64(res.M) {
		t.Error("sample accounting mismatch")
	}
}

func TestSampleComplexityPredictions(t *testing.T) {
	opts := Options{K: 4, Eps: 0.25, SampleScale: 0.01, MaxSamplesPerSet: 5000}
	d := dist.Uniform(256)
	cs := dist.NewCountingSampler(dist.NewSampler(d, rand.New(rand.NewSource(15))))
	res, err := TestTilingL2(cs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Count() != opts.SampleComplexityL2(256) {
		t.Errorf("L2 draws %d != predicted %d", cs.Count(), opts.SampleComplexityL2(256))
	}
	if res.SamplesUsed != cs.Count() {
		t.Error("result sample accounting mismatch")
	}
	cs.Reset()
	if _, err := TestTilingL1(cs, opts); err != nil {
		t.Fatal(err)
	}
	if cs.Count() != opts.SampleComplexityL1(256) {
		t.Errorf("L1 draws %d != predicted %d", cs.Count(), opts.SampleComplexityL1(256))
	}
	// Invalid options predict zero.
	if (Options{K: 0, Eps: 0.5}).SampleComplexityL2(256) != 0 {
		t.Error("invalid options should predict 0")
	}
}

// The l1 tester's cost must scale like sqrt(n) (times sqrt(k)), while the
// l2 tester's cost is polylogarithmic in n: growing n by 16x should grow
// the l1 budget by ~4x but the l2 budget by well under 2x.
func TestComplexityScalingShape(t *testing.T) {
	opts := Options{K: 4, Eps: 0.25}
	l1Small := float64(opts.SampleComplexityL1(1 << 10))
	l1Large := float64(opts.SampleComplexityL1(1 << 14))
	ratio := l1Large / l1Small
	if ratio < 3 || ratio > 6 {
		t.Errorf("l1 cost ratio for 16x domain growth = %v, want ~4", ratio)
	}
	l2Small := float64(opts.SampleComplexityL2(1 << 10))
	l2Large := float64(opts.SampleComplexityL2(1 << 14))
	if r := l2Large / l2Small; r > 2.5 {
		t.Errorf("l2 cost ratio for 16x domain growth = %v, want polylog", r)
	}
}

func TestUniformityTester(t *testing.T) {
	// Uniform: accept.
	u := dist.NewSampler(dist.Uniform(256), rand.New(rand.NewSource(16)))
	res, err := TestUniformityL1(u, nil, 0.3, 0.05, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accept {
		t.Errorf("rejected uniform: coll prob %v vs threshold %v",
			res.CollisionProb, res.Threshold)
	}
	// Half-support: far from uniform, reject.
	far := dist.HalfSupport(dist.Uniform(256), dist.Whole(256), rand.New(rand.NewSource(17)))
	fs := dist.NewSampler(far, rand.New(rand.NewSource(18)))
	res2, err := TestUniformityL1(fs, nil, 0.3, 0.05, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Accept {
		t.Errorf("accepted half-support: coll prob %v vs threshold %v",
			res2.CollisionProb, res2.Threshold)
	}
	// Validation.
	if _, err := TestUniformityL1(u, nil, 0, 1, 0); err == nil {
		t.Error("eps=0: want error")
	}
	tiny := dist.NewSampler(dist.Uniform(1), rand.New(rand.NewSource(19)))
	if _, err := TestUniformityL1(tiny, nil, 0.3, 1, 0); err == nil {
		t.Error("tiny domain: want error")
	}
}

func TestFlatnessOracleEdgeCases(t *testing.T) {
	// Single-element intervals are always flat.
	e := dist.NewEmpirical([]int{0, 0, 0, 0}, 4)
	sets := []*dist.Empirical{e}
	if !flatL2(sets, dist.Interval{Lo: 0, Hi: 1}, 0.3, 1) {
		t.Error("single element not flat (l2)")
	}
	if !flatL1(sets, dist.Interval{Lo: 0, Hi: 1}, 0.3, 2, 4, 1) {
		t.Error("single element not flat (l1)")
	}
	// Zero-hit intervals are light, hence flat.
	if !flatL2(sets, dist.Interval{Lo: 2, Hi: 4}, 0.3, 1) {
		t.Error("zero-hit interval not flat (l2)")
	}
	if !flatL1(sets, dist.Interval{Lo: 2, Hi: 4}, 0.3, 2, 4, 1) {
		t.Error("zero-hit interval not flat (l1)")
	}
	// A heavily colliding two-element interval with all mass on one
	// element is not flat once it has plenty of hits.
	heavy := make([]int, 1000)
	big := dist.NewEmpirical(heavy, 4) // all samples on element 0
	if flatL2([]*dist.Empirical{big}, dist.Interval{Lo: 0, Hi: 2}, 0.3, 1) {
		t.Error("point-mass interval reported flat (l2)")
	}
	if flatL1([]*dist.Empirical{big}, dist.Interval{Lo: 0, Hi: 2}, 0.3, 1, 4, 1) {
		t.Error("point-mass interval reported flat (l1)")
	}
}

// Determinism: identical options and seeds give identical verdicts and
// partitions.
func TestTesterDeterministic(t *testing.T) {
	d := dist.RandomKHistogram(96, 3, rand.New(rand.NewSource(30)))
	run := func() *Result {
		s := dist.NewSampler(d, rand.New(rand.NewSource(31)))
		res, err := TestTilingL2(s, Options{
			K: 3, Eps: 0.3, Rand: rand.New(rand.NewSource(32)),
			SampleScale: 0.02, MaxSamplesPerSet: 2000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Accept != b.Accept || len(a.Partition) != len(b.Partition) {
		t.Fatal("same-seed tester runs differ")
	}
	for i := range a.Partition {
		if a.Partition[i] != b.Partition[i] {
			t.Fatal("same-seed partitions differ")
		}
	}
}

// The zero-mass region of a distribution must never block acceptance:
// a distribution living on a tiny prefix is a 2-histogram.
func TestTesterZeroMassTail(t *testing.T) {
	d := dist.UniformOn(256, dist.Interval{Lo: 0, Hi: 8})
	s := dist.NewSampler(d, rand.New(rand.NewSource(33)))
	res, err := TestTilingL2(s, testerOpts(2, 0.3, 34))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accept {
		t.Errorf("rejected uniform-on-prefix (a 2-histogram); partition %v", res.Partition)
	}
}
