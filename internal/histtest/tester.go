// Package histtest implements the paper's property-testing contribution
// (Section 4): distinguishing distributions that are tiling k-histograms
// from distributions that are epsilon-far from every tiling k-histogram,
// in the l2 and l1 distances.
//
// Both testers share the Algorithm 2 skeleton: greedily partition [n] into
// at most k intervals that look flat, locating each flat stretch's right
// boundary by binary search; accept iff the whole domain is covered. They
// differ only in the flatness oracle (Algorithm 3 for l2, Algorithm 4 for
// l1) and in the per-set sample size m.
//
// An interval is flat when its conditional distribution is uniform (or it
// has no mass). Flatness is certified from samples: an interval is
// accepted either because few samples hit it (it is light, so its
// contribution to any distance is small) or because its observed collision
// probability is close to the minimum 1/|I|, which only uniform
// conditionals achieve.
package histtest

import (
	"errors"
	"math"
	"math/rand"

	"khist/internal/collision"
	"khist/internal/dist"
	"khist/internal/par"
)

// Errors returned by the testers.
var (
	ErrBadK       = errors.New("histtest: k must be at least 1")
	ErrBadEps     = errors.New("histtest: eps must lie in (0, 1)")
	ErrBadScale   = errors.New("histtest: SampleScale must be positive")
	ErrTinyDomain = errors.New("histtest: domain must have at least 2 elements")
	ErrBadDomain  = errors.New("histtest: sampler and reference distribution domains differ")
	ErrNoSets     = errors.New("histtest: FromSets needs non-nil tabulated sets over the same domain")
)

// Options configures the property testers.
type Options struct {
	// K is the piece budget of the property: "is p a tiling K-histogram?"
	K int
	// Eps is the distance parameter: distributions Eps-far from every
	// tiling K-histogram (in the tester's norm) are rejected with
	// probability at least 2/3.
	Eps float64
	// Rand seeds the tester's stream-splitting: one value is drawn from
	// it per run and fanned out (via par.Split) into an independent seed
	// per collision set, so forkable samplers can fill the r sets
	// concurrently. Nil means a fixed-seed source, making runs
	// reproducible by default; pass a shared *rand.Rand so repeated
	// tester calls in one process draw distinct streams.
	Rand *rand.Rand
	// SampleScale multiplies the paper's sample-size formulas (the
	// worst-case constants are very conservative). Zero means 1.
	SampleScale float64
	// MaxSamplesPerSet caps each sample set's size. Zero means no cap.
	MaxSamplesPerSet int
	// Parallelism splits the tester's heavy phases — drawing and
	// tabulating the r = 16 ln(6 n^2) collision sets (when the sampler is
	// forkable) and the per-set flatness statistics — across this many
	// goroutines. Verdicts and partitions are bit-identical to the serial
	// run at every worker count. Zero or one means serial.
	Parallelism int
}

// workers returns the effective parallelism degree of Parallelism.
func (o Options) workers() int { return par.Effective(o.Parallelism) }

func (o Options) validate() error {
	if o.K < 1 {
		return ErrBadK
	}
	if !(o.Eps > 0 && o.Eps < 1) || math.IsNaN(o.Eps) {
		return ErrBadEps
	}
	if o.SampleScale < 0 {
		return ErrBadScale
	}
	return nil
}

func (o Options) rng() *rand.Rand {
	if o.Rand != nil {
		return o.Rand
	}
	return rand.New(rand.NewSource(1))
}

// numSets returns r = 16 ln(6 n^2), the median-amplification count used by
// Algorithm 2 for both norms.
func numSets(n int) int {
	nf := float64(n)
	r := int(math.Ceil(16 * math.Log(6*nf*nf)))
	if r < 1 {
		r = 1
	}
	return r
}

// setSize applies scale and cap to a raw per-set sample size.
func (o Options) setSize(raw float64) int {
	scale := o.SampleScale
	if scale == 0 {
		scale = 1
	}
	m := int(math.Ceil(scale * raw))
	if m < 2 {
		m = 2
	}
	if o.MaxSamplesPerSet > 0 && m > o.MaxSamplesPerSet {
		m = o.MaxSamplesPerSet
	}
	return m
}

// Result reports a tester run.
type Result struct {
	// Accept is the verdict: true means "consistent with a tiling
	// K-histogram", false means "far from every tiling K-histogram".
	Accept bool
	// Partition holds the flat intervals found. On accept they tile the
	// domain with at most K parts; on reject they cover the prefix the
	// tester managed to flatten before exhausting its K intervals.
	Partition []dist.Interval
	// SamplesUsed is the number of oracle draws consumed.
	SamplesUsed int64
	// FlatnessCalls counts invocations of the flatness oracle, the
	// running-time driver (each is O(r) after tabulation).
	FlatnessCalls int
	// R and M are the derived sample-set count and per-set size.
	R, M int
}

// TestTilingL2 is the Theorem 3 tester for the property "p is a tiling
// K-histogram" under the l2 distance. Sample complexity O(eps^-4 ln^2 n)
// with the paper's constants: r = 16 ln(6 n^2) sets of m = 64 ln(n) eps^-4
// samples each.
func TestTilingL2(s dist.Sampler, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := s.N()
	if n < 2 {
		return nil, ErrTinyDomain
	}
	e4 := opts.Eps * opts.Eps * opts.Eps * opts.Eps
	m := opts.setSize(64 * math.Log(float64(n)) / e4)
	return runPartitionTester(s, opts, m, func(sets []*dist.Empirical, iv dist.Interval) bool {
		return flatL2(sets, iv, opts.Eps, opts.workers())
	})
}

// TestTilingL1 is the Theorem 4 tester for the property "p is a tiling
// K-histogram" under the l1 distance. Sample complexity O~(eps^-5
// sqrt(K n)) with the paper's constants: r = 16 ln(6 n^2) sets of
// m = 2^13 sqrt(K n) eps^-5 samples each.
func TestTilingL1(s dist.Sampler, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := s.N()
	if n < 2 {
		return nil, ErrTinyDomain
	}
	e5 := math.Pow(opts.Eps, 5)
	m := opts.setSize(8192 * math.Sqrt(float64(opts.K)*float64(n)) / e5)
	return runPartitionTester(s, opts, m, func(sets []*dist.Empirical, iv dist.Interval) bool {
		return flatL1(sets, iv, opts.Eps, opts.K, n, opts.workers())
	})
}

// runPartitionTester is the Algorithm 2 skeleton: draw r sample sets of
// size m, then hand off to partitionOnSets.
//
// The r sets are drawn through the batched sample plane: a forkable
// sampler fills them concurrently, one split stream per set, so the
// verdict is identical for every worker count. The binary searches are
// inherently sequential (each probe depends on the last), so past the
// draw phase parallelism only accelerates the per-set statistics inside
// each flatness call.
func runPartitionTester(
	s dist.Sampler,
	opts Options,
	m int,
	flat func(sets []*dist.Empirical, iv dist.Interval) bool,
) (*Result, error) {
	n := s.N()
	r := numSets(n)
	sizes := make([]int, r)
	for i := range sizes {
		sizes[i] = m
	}
	sets := collision.CollectSetsSized(s, sizes, opts.workers(), opts.rng().Uint64())
	return partitionOnSets(sets, n, opts, flat), nil
}

// partitionOnSets greedily carves [0, n) into at most K intervals the
// flatness oracle accepts, finding each interval's maximal right end by
// binary search; accept iff the intervals cover the domain. The sets are
// read-only throughout, so one tabulated bundle serves any number of
// concurrent tester runs.
func partitionOnSets(
	sets []*dist.Empirical,
	n int,
	opts Options,
	flat func(sets []*dist.Empirical, iv dist.Interval) bool,
) *Result {
	res := &Result{
		R: len(sets),
		M: minSetSize(sets),
	}
	for _, e := range sets {
		res.SamplesUsed += int64(e.M())
	}

	cursor := 0
	for i := 0; i < opts.K && cursor < n; i++ {
		// Binary search the largest end in (cursor, n] with
		// flat([cursor, end)). Flatness of true histograms is monotone in
		// end up to the next piece boundary, which is what the search
		// exploits; on far instances any outcome only helps rejection.
		lo, hi := cursor+1, n
		end := cursor
		for lo <= hi {
			mid := lo + (hi-lo)/2
			res.FlatnessCalls++
			if flat(sets, dist.Interval{Lo: cursor, Hi: mid}) {
				end = mid
				lo = mid + 1
			} else {
				hi = mid - 1
			}
		}
		if end == cursor {
			// Not even a single element passed: the oracle rejected
			// [cursor, cursor+1). Single elements are always flat for both
			// oracles, so this is unreachable; guard against a misbehaving
			// custom oracle by treating it as a failed partition.
			break
		}
		res.Partition = append(res.Partition, dist.Interval{Lo: cursor, Hi: end})
		cursor = end
	}
	res.Accept = cursor == n
	return res
}

// minSetSize returns the smallest set size, the budget the flatness
// guarantees are limited by; 0 for no sets.
func minSetSize(sets []*dist.Empirical) int {
	if len(sets) == 0 {
		return 0
	}
	m := sets[0].M()
	for _, e := range sets[1:] {
		if e.M() < m {
			m = e.M()
		}
	}
	return m
}

// TestTilingL2FromSets runs the Theorem 3 tester on already-tabulated
// collision sample sets instead of drawing from a live oracle. This is
// the serving layer's entry point: the sets are immutable and shared, and
// for a fixed bundle the verdict and partition are bit-identical at every
// Parallelism. Options' sample-size fields are ignored; K and Eps drive
// the test itself.
func TestTilingL2FromSets(sets []*dist.Empirical, n int, opts Options) (*Result, error) {
	if err := validateSets(sets, n, opts); err != nil {
		return nil, err
	}
	return partitionOnSets(sets, n, opts, func(sets []*dist.Empirical, iv dist.Interval) bool {
		return flatL2(sets, iv, opts.Eps, opts.workers())
	}), nil
}

// TestTilingL1FromSets is TestTilingL2FromSets for the Theorem 4 l1
// tester.
func TestTilingL1FromSets(sets []*dist.Empirical, n int, opts Options) (*Result, error) {
	if err := validateSets(sets, n, opts); err != nil {
		return nil, err
	}
	return partitionOnSets(sets, n, opts, func(sets []*dist.Empirical, iv dist.Interval) bool {
		return flatL1(sets, iv, opts.Eps, opts.K, n, opts.workers())
	}), nil
}

func validateSets(sets []*dist.Empirical, n int, opts Options) error {
	if err := opts.validate(); err != nil {
		return err
	}
	if n < 2 {
		return ErrTinyDomain
	}
	if len(sets) == 0 {
		return ErrNoSets
	}
	for _, e := range sets {
		if e == nil || e.N() != n {
			return ErrNoSets
		}
	}
	return nil
}

// PlanL2 returns the sample-set profile TestTilingL2 would draw for
// domain size n: r sets of m samples each, without drawing. The serving
// layer uses it to key its sample-set cache.
func (o Options) PlanL2(n int) (r, m int, err error) {
	if err := o.validate(); err != nil {
		return 0, 0, err
	}
	if n < 2 {
		return 0, 0, ErrTinyDomain
	}
	e4 := o.Eps * o.Eps * o.Eps * o.Eps
	return numSets(n), o.setSize(64 * math.Log(float64(n)) / e4), nil
}

// PlanL1 is PlanL2 for the l1 tester.
func (o Options) PlanL1(n int) (r, m int, err error) {
	if err := o.validate(); err != nil {
		return 0, 0, err
	}
	if n < 2 {
		return 0, 0, ErrTinyDomain
	}
	e5 := math.Pow(o.Eps, 5)
	return numSets(n), o.setSize(8192 * math.Sqrt(float64(o.K)*float64(n)) / e5), nil
}

// SampleComplexityL2 predicts the draws TestTilingL2 makes on domain size
// n, without sampling.
func (o Options) SampleComplexityL2(n int) int64 {
	if o.validate() != nil || n < 2 {
		return 0
	}
	e4 := o.Eps * o.Eps * o.Eps * o.Eps
	m := o.setSize(64 * math.Log(float64(n)) / e4)
	return int64(numSets(n)) * int64(m)
}

// SampleComplexityL1 predicts the draws TestTilingL1 makes on domain size
// n, without sampling.
func (o Options) SampleComplexityL1(n int) int64 {
	if o.validate() != nil || n < 2 {
		return 0
	}
	e5 := math.Pow(o.Eps, 5)
	m := o.setSize(8192 * math.Sqrt(float64(o.K)*float64(n)) / e5)
	return int64(numSets(n)) * int64(m)
}
