package khist_test

import (
	"math"
	"math/rand"
	"testing"

	"khist"
)

// End-to-end: generate a k-histogram, learn it from samples through the
// public API, verify the recovered histogram is close, and confirm both
// testers accept it.
func TestEndToEndLearnAndTest(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := khist.RandomKHistogram(96, 4, rng)

	res, err := khist.Learn(
		khist.NewSampler(d, rand.New(rand.NewSource(2))),
		khist.LearnOptions{K: 4, Eps: 0.1, SampleScale: 0.05, MaxSamplesPerSet: 100000},
	)
	if err != nil {
		t.Fatal(err)
	}
	if errSq := res.Tiling.L2SqTo(d); errSq > 0.01 {
		t.Errorf("learned histogram error %v", errSq)
	}
	if res.SamplesUsed <= 0 || res.Iterations <= 0 {
		t.Error("result metadata missing")
	}

	topts := khist.TestOptions{K: 4, Eps: 0.25, SampleScale: 0.02, MaxSamplesPerSet: 4000}
	l2, err := khist.TestKHistogramL2(khist.NewSampler(d, rand.New(rand.NewSource(3))), topts)
	if err != nil {
		t.Fatal(err)
	}
	if !l2.Accept {
		t.Error("l2 tester rejected a true 4-histogram")
	}
	l1, err := khist.TestKHistogramL1(khist.NewSampler(d, rand.New(rand.NewSource(4))), topts)
	if err != nil {
		t.Fatal(err)
	}
	if !l1.Accept {
		t.Error("l1 tester rejected a true 4-histogram")
	}
}

// End-to-end on the far side: a staircase is far from every 4-histogram;
// the learner must still get within its additive guarantee of the (large)
// optimum, and the offline DP must certify the distance.
func TestEndToEndFarInstance(t *testing.T) {
	d := khist.Zipf(128, 1.2)
	opt, err := khist.OptimalL2Error(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := khist.Learn(
		khist.NewSampler(d, rand.New(rand.NewSource(5))),
		khist.LearnOptions{K: 4, Eps: 0.1, SampleScale: 0.05, MaxSamplesPerSet: 100000},
	)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Tiling.L2SqTo(d)
	if got > opt+0.05 {
		t.Errorf("learned error %v vs optimal %v", got, opt)
	}
}

// The public constructors and distances must round-trip coherently.
func TestPublicSurface(t *testing.T) {
	d, err := khist.NewDistribution([]float64{0.25, 0.25, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if khist.L1(d, khist.Uniform(4)) != 0 {
		t.Error("NewDistribution/Uniform mismatch")
	}
	w, err := khist.FromWeights([]float64{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.P(2)-0.5) > 1e-12 {
		t.Error("FromWeights mis-normalized")
	}
	g := khist.Geometric(16, 0.5)
	z := khist.Zipf(16, 1)
	if khist.L2Sq(g, z) <= 0 || khist.TV(g, z) <= 0 || khist.L2(g, z) <= 0 {
		t.Error("distances degenerate")
	}
	spec, err := khist.KHistogramFromSpec(8, []int{4}, []float64{0.75, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	h := khist.HistogramOf(spec)
	if h.Pieces() > 2 {
		t.Errorf("HistogramOf pieces = %d", h.Pieces())
	}
	mix, err := khist.Mixture([]*khist.Distribution{g, z}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if mix.N() != 16 {
		t.Error("mixture domain")
	}
	bf, err := khist.BestFit(spec, []int{0, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if bf.L2SqTo(spec) > 1e-18 {
		t.Error("BestFit on exact boundaries not exact")
	}
	tl, err := khist.NewTiling([]int{0, 8}, []float64{0.125})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Pieces() != 1 {
		t.Error("NewTiling")
	}
}

func TestPublicSamplers(t *testing.T) {
	d := khist.Uniform(8)
	cs := khist.NewCountingSampler(khist.NewSampler(d, rand.New(rand.NewSource(6))))
	for i := 0; i < 10; i++ {
		cs.Sample()
	}
	if cs.Count() != 10 {
		t.Error("counting sampler")
	}
	bs := khist.NewBudgetSampler(khist.NewSampler(d, rand.New(rand.NewSource(7))), 5)
	for i := 0; i < 6; i++ {
		bs.Sample()
	}
	if !bs.Exceeded() {
		t.Error("budget sampler")
	}
	e := khist.NewEmpirical([]int{1, 1, 2}, 8)
	if e.Hits(khist.Interval{Lo: 0, Hi: 8}) != 3 {
		t.Error("empirical hits")
	}
}

func TestPublicOfflineBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := khist.RandomKHistogram(64, 3, rng)
	for name, f := range map[string]func() (*khist.Tiling, error){
		"OptimalL2":   func() (*khist.Tiling, error) { return khist.OptimalL2(d, 3) },
		"OptimalL1":   func() (*khist.Tiling, error) { return khist.OptimalL1(d, 3) },
		"GreedyMerge": func() (*khist.Tiling, error) { return khist.GreedyMerge(d, 3) },
	} {
		h, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h.L2SqTo(d) > 1e-12 {
			t.Errorf("%s: error %v on exact histogram", name, h.L2SqTo(d))
		}
	}
	if e, err := khist.OptimalL1Error(d, 3); err != nil || e > 1e-12 {
		t.Errorf("OptimalL1Error = %v, %v", e, err)
	}
	emp := khist.NewEmpirical([]int{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if _, err := khist.EquiWidth(emp, 4); err != nil {
		t.Error(err)
	}
	if _, err := khist.EquiDepth(emp, 4); err != nil {
		t.Error(err)
	}
}

func TestPublicUniformity(t *testing.T) {
	u := khist.NewSampler(khist.Uniform(256), rand.New(rand.NewSource(9)))
	res, err := khist.TestUniformity(u, nil, 0.3, 0.05, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accept {
		t.Error("uniformity tester rejected uniform")
	}
}

// The learner must honor the sub-linearity promise through the public API:
// for a large domain, its draw count is a small fraction of n when the
// constants are scaled to practical values.
func TestSublinearSampling(t *testing.T) {
	n := 1 << 16
	d := khist.RandomKHistogram(n, 2, rand.New(rand.NewSource(10)))
	opts := khist.LearnOptions{
		K: 2, Eps: 0.3, SampleScale: 0.001, MaxSamplesPerSet: 500, Iterations: 2,
	}
	cs := khist.NewCountingSampler(khist.NewSampler(d, rand.New(rand.NewSource(11))))
	if _, err := khist.Learn(cs, opts); err != nil {
		t.Fatal(err)
	}
	if cs.Count() >= int64(n) {
		t.Errorf("drew %d samples on a domain of %d: not sub-linear", cs.Count(), n)
	}
}

func TestPublicIdentityAndDistance(t *testing.T) {
	q := khist.Zipf(128, 1.1)
	id, err := khist.TestIdentity(
		khist.NewSampler(q, rand.New(rand.NewSource(20))), q, nil, 0.25, 0.2, 20000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !id.Accept {
		t.Error("identity tester rejected p == q")
	}
	d := khist.RandomKHistogram(64, 3, rand.New(rand.NewSource(21)))
	est, err := khist.EstimateDistance(
		khist.NewSampler(d, rand.New(rand.NewSource(22))),
		khist.LearnOptions{K: 3, Eps: 0.1, SampleScale: 0.05, MaxSamplesPerSet: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if est.DistSq > 0.005 {
		t.Errorf("distance estimate %v on an exact histogram", est.DistSq)
	}
	if est.Histogram.Pieces() > 3 {
		t.Errorf("distance estimator returned %d pieces", est.Histogram.Pieces())
	}
}

func TestPublicReduce(t *testing.T) {
	p := khist.Zipf(64, 1.0)
	fine, err := khist.OptimalL2(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	r, err := khist.ReduceL2(fine, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pieces() > 4 {
		t.Errorf("reduced pieces = %d", r.Pieces())
	}
}

func TestPublicStreaming(t *testing.T) {
	m, err := khist.NewMaintainer(khist.StreamOptions{
		N: 64, K: 3, Eps: 0.2, ReservoirSize: 8000,
		Rand: rand.New(rand.NewSource(23)),
	})
	if err != nil {
		t.Fatal(err)
	}
	d := khist.RandomKHistogram(64, 3, rand.New(rand.NewSource(24)))
	s := khist.NewSampler(d, rand.New(rand.NewSource(25)))
	for i := 0; i < 50000; i++ {
		m.Observe(s.Sample())
	}
	h, err := m.Extract()
	if err != nil {
		t.Fatal(err)
	}
	if h.L2SqTo(d) > 0.02 {
		t.Errorf("streaming extraction error %v", h.L2SqTo(d))
	}
	r, err := khist.NewReservoir(10, rand.New(rand.NewSource(26)))
	if err != nil {
		t.Fatal(err)
	}
	r.Observe(3)
	if r.Len() != 1 {
		t.Error("reservoir")
	}
	cm, err := khist.NewCountMin(0.01, 0.01, rand.New(rand.NewSource(27)))
	if err != nil {
		t.Fatal(err)
	}
	cm.Add(5, 2)
	if cm.Estimate(5) < 2 {
		t.Error("countmin underestimates")
	}
	dy, err := khist.NewDyadic(64, 4, 256, rand.New(rand.NewSource(28)))
	if err != nil {
		t.Fatal(err)
	}
	dy.Add(7, 3)
	if dy.RangeEstimate(khist.Interval{Lo: 0, Hi: 8}) < 3 {
		t.Error("dyadic underestimates")
	}
}

func TestPublic2D(t *testing.T) {
	g := khist.RandomRectHistogram(12, 12, 3, rand.New(rand.NewSource(30)))
	s := khist.NewSampler(g.Flatten(), rand.New(rand.NewSource(31)))
	res, err := khist.Learn2D(s, khist.Options2D{
		Rows: 12, Cols: 12, K: 3, Eps: 0.1,
		Samples: 20000, Rand: rand.New(rand.NewSource(32)),
	})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := khist.FromWeights2D(12, 12, g.Flatten().PMF())
	if err != nil {
		t.Fatal(err)
	}
	_ = flat
	if res.Hist.L2SqTo(g) > 0.01 {
		t.Errorf("2D learner error %v", res.Hist.L2SqTo(g))
	}
	u := khist.Uniform2D(4, 4)
	if u.Weight(khist.Rect{X0: 0, Y0: 0, X1: 4, Y1: 4}) != 1 {
		t.Error("Uniform2D mass")
	}
	if _, err := khist.NewGrid(2, 2, []float64{0.25, 0.25, 0.25, 0.25}); err != nil {
		t.Error(err)
	}
}
